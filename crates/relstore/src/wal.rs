//! The write-ahead log: logical (statement-level) records with LSNs,
//! optional at-rest encryption, fsync policies, and crash recovery.
//!
//! Frame format: `[u32 length][payload]` where the payload is a statement's
//! binary encoding ([`Statement::encode`]) — sealed with [`crypto::Volume`]
//! when encryption at rest is on, using the LSN as the block number so
//! reordered or transplanted frames fail authentication on recovery.

use crate::config::{FsyncPolicy, WalStorage};
use crate::error::{RelError, RelResult};
use crate::statement::Statement;
use clock::{SharedClock, Timestamp};
use crypto::Volume;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Shared in-memory WAL buffer (test/recovery use).
pub type MemBuffer = Arc<Mutex<Vec<u8>>>;

enum Sink {
    File(BufWriter<File>),
    Memory(MemBuffer),
}

/// The WAL writer.
pub struct Wal {
    sink: Sink,
    policy: FsyncPolicy,
    volume: Option<Volume>,
    clock: SharedClock,
    last_sync: Timestamp,
    /// Next log sequence number.
    pub lsn: u64,
    /// Total bytes appended (frames included).
    pub bytes: u64,
}

impl Wal {
    /// Open a WAL writer. Returns `None` for [`WalStorage::Disabled`].
    pub fn open(
        storage: &WalStorage,
        policy: FsyncPolicy,
        volume: Option<Volume>,
        clock: SharedClock,
    ) -> RelResult<Option<Wal>> {
        let sink = match storage {
            WalStorage::Disabled => return Ok(None),
            WalStorage::File(path) => {
                let file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| RelError::Wal(format!("open {path:?}: {e}")))?;
                Sink::File(BufWriter::new(file))
            }
            WalStorage::Memory => Sink::Memory(Arc::new(Mutex::new(Vec::new()))),
        };
        let last_sync = clock.now();
        Ok(Some(Wal {
            sink,
            policy,
            volume,
            clock,
            last_sync,
            lsn: 0,
            bytes: 0,
        }))
    }

    pub fn memory_buffer(&self) -> Option<MemBuffer> {
        match &self.sink {
            Sink::Memory(buf) => Some(Arc::clone(buf)),
            Sink::File(_) => None,
        }
    }

    /// Append one statement; returns its LSN.
    pub fn append(&mut self, stmt: &Statement) -> RelResult<u64> {
        let lsn = self.lsn;
        let mut payload = stmt.encode();
        if let Some(volume) = &self.volume {
            payload = volume.seal(lsn, &payload);
        }
        let frame_len = payload.len() as u32;
        match &mut self.sink {
            Sink::File(w) => {
                w.write_all(&frame_len.to_le_bytes())?;
                w.write_all(&payload)?;
            }
            Sink::Memory(buf) => {
                let mut buf = buf.lock();
                buf.extend_from_slice(&frame_len.to_le_bytes());
                buf.extend_from_slice(&payload);
            }
        }
        self.lsn += 1;
        self.bytes += 4 + payload.len() as u64;
        self.maybe_sync()?;
        Ok(lsn)
    }

    fn maybe_sync(&mut self) -> RelResult<()> {
        match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::EverySec => {
                if self.clock.now() - self.last_sync >= Duration::from_secs(1) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Flush and (for files) fsync.
    pub fn sync(&mut self) -> RelResult<()> {
        if let Sink::File(w) = &mut self.sink {
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        self.last_sync = self.clock.now();
        Ok(())
    }
}

/// Decode a WAL byte stream into its statement sequence.
pub fn decode_stream(mut data: &[u8], volume: Option<&Volume>) -> RelResult<Vec<Statement>> {
    let mut statements = Vec::new();
    let mut expected_lsn = 0u64;
    while !data.is_empty() {
        if data.len() < 4 {
            return Err(RelError::Corrupt("truncated WAL frame header".into()));
        }
        let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        data = &data[4..];
        if data.len() < len {
            return Err(RelError::Corrupt("truncated WAL frame payload".into()));
        }
        let payload = &data[..len];
        data = &data[len..];
        let plain;
        let bytes: &[u8] = match volume {
            Some(v) => {
                let (lsn, pt) = v
                    .open(payload)
                    .map_err(|e| RelError::Corrupt(format!("WAL decrypt: {e}")))?;
                if lsn != expected_lsn {
                    return Err(RelError::Corrupt(format!(
                        "WAL frame out of order: lsn {lsn}, expected {expected_lsn}"
                    )));
                }
                plain = pt;
                &plain
            }
            None => payload,
        };
        expected_lsn += 1;
        statements.push(Statement::decode(bytes)?);
    }
    Ok(statements)
}

/// Read and decode a WAL file.
pub fn read_file(path: &Path, volume: Option<&Volume>) -> RelResult<Vec<Statement>> {
    let mut data = Vec::new();
    File::open(path)
        .map_err(|e| RelError::Wal(format!("open {path:?}: {e}")))?
        .read_to_end(&mut data)?;
    decode_stream(&data, volume)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;
    use crate::predicate::Predicate;

    fn stmt(i: u64) -> Statement {
        Statement::Insert {
            table: "t".into(),
            row: vec![Datum::Int(i as i64), Datum::Text(format!("row{i}"))],
        }
    }

    #[test]
    fn disabled_is_none() {
        assert!(Wal::open(
            &WalStorage::Disabled,
            FsyncPolicy::Never,
            None,
            clock::wall()
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn append_assigns_sequential_lsns() {
        let mut wal = Wal::open(&WalStorage::Memory, FsyncPolicy::Never, None, clock::wall())
            .unwrap()
            .unwrap();
        for i in 0..5 {
            assert_eq!(wal.append(&stmt(i)).unwrap(), i);
        }
        assert_eq!(wal.lsn, 5);
    }

    #[test]
    fn roundtrip_plain() {
        let mut wal = Wal::open(&WalStorage::Memory, FsyncPolicy::Never, None, clock::wall())
            .unwrap()
            .unwrap();
        let stmts: Vec<_> = (0..10).map(stmt).collect();
        for s in &stmts {
            wal.append(s).unwrap();
        }
        let buf = wal.memory_buffer().unwrap();
        let decoded = decode_stream(&buf.lock(), None).unwrap();
        assert_eq!(decoded, stmts);
    }

    #[test]
    fn roundtrip_encrypted_and_tamper_detection() {
        let mut wal = Wal::open(
            &WalStorage::Memory,
            FsyncPolicy::Never,
            Some(Volume::new(b"wal-key")),
            clock::wall(),
        )
        .unwrap()
        .unwrap();
        wal.append(&Statement::Delete {
            table: "personal_data".into(),
            pred: Predicate::eq_text("usr", "neo"),
        })
        .unwrap();
        let raw = wal.memory_buffer().unwrap().lock().clone();
        assert!(!raw.windows(3).any(|w| w == b"neo"), "WAL must be opaque");
        let volume = Volume::new(b"wal-key");
        let decoded = decode_stream(&raw, Some(&volume)).unwrap();
        assert_eq!(decoded.len(), 1);
        // Tamper: flip one ciphertext byte.
        let mut bad = raw.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(decode_stream(&bad, Some(&volume)).is_err());
    }

    #[test]
    fn file_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("relwal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(
                &WalStorage::File(path.clone()),
                FsyncPolicy::Always,
                None,
                clock::wall(),
            )
            .unwrap()
            .unwrap();
            for i in 0..7 {
                wal.append(&stmt(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        let decoded = read_file(&path, None).unwrap();
        assert_eq!(decoded.len(), 7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut wal = Wal::open(&WalStorage::Memory, FsyncPolicy::Never, None, clock::wall())
            .unwrap()
            .unwrap();
        wal.append(&stmt(0)).unwrap();
        let raw = wal.memory_buffer().unwrap().lock().clone();
        assert!(decode_stream(&raw[..raw.len() - 1], None).is_err());
        assert!(decode_stream(&raw[..3], None).is_err());
    }
}
