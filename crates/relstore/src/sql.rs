//! A SQL front-end for the statement API — the dialect the paper's
//! PostgreSQL client stub would issue through `psql`.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```sql
//! CREATE TABLE t (key TEXT, n INT, tags TEXT[], at TIMESTAMP, PRIMARY KEY (key));
//! CREATE INDEX tags_idx ON t USING GIN (tags);
//! CREATE INDEX n_idx ON t (n);
//! DROP INDEX n_idx ON t;
//! INSERT INTO t VALUES ('k1', 7, ARRAY['ads','2fa'], TIMESTAMP 123456);
//! SELECT * FROM t WHERE key = 'k1' AND NOT 'ads' = ANY(tags);
//! SELECT count(*) FROM t WHERE n >= 5 OR at IS NULL;
//! SELECT * FROM t WHERE key >= 'k0' ORDER BY key LIMIT 10;
//! UPDATE t SET n = 9, tags = ARRAY['ads'] WHERE key = 'k1';
//! DELETE FROM t WHERE at <= TIMESTAMP 99;
//! ```
//!
//! The parser is a hand-written tokenizer + recursive descent over exactly
//! the statement shapes [`Statement`] supports; anything else is a syntax
//! error, never a silent misinterpretation.

use crate::datum::Datum;
use crate::error::{RelError, RelResult};
use crate::predicate::Predicate;
use crate::schema::ColumnType;
use crate::statement::Statement;

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> RelResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept_symbol(";");
    if !p.at_end() {
        return Err(p.error("trailing tokens after statement"));
    }
    Ok(stmt)
}

// ---------------------------------------------------------------- tokens

#[derive(Debug, Clone, PartialEq)]
enum Token {
    /// Keyword or identifier (stored lowercase for keywords matching; the
    /// original spelling is kept for identifiers).
    Word(String),
    /// 'single-quoted string' ('' escapes a quote).
    Str(String),
    Number(String),
    Symbol(String),
}

fn tokenize(sql: &str) -> RelResult<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(RelError::Wal("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            '<' | '>' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Symbol(format!("{c}=")));
                i += 2;
            }
            '(' | ')' | ',' | ';' | '=' | '<' | '>' | '*' | '[' | ']' => {
                out.push(Token::Symbol(c.to_string()));
                i += 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while chars
                    .get(i)
                    .is_some_and(|d| d.is_ascii_digit() || *d == '.')
                {
                    i += 1;
                }
                out.push(Token::Number(chars[start..i].iter().collect()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while chars
                    .get(i)
                    .is_some_and(|d| d.is_ascii_alphanumeric() || *d == '_')
                {
                    i += 1;
                }
                out.push(Token::Word(chars[start..i].iter().collect()));
            }
            other => {
                return Err(RelError::Wal(format!(
                    "unexpected character {other:?} in SQL"
                )));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------- parser

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, msg: &str) -> RelError {
        RelError::Wal(format!(
            "SQL syntax error at token {}: {msg} (next: {:?})",
            self.pos,
            self.tokens.get(self.pos)
        ))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek_word(&self) -> Option<String> {
        match self.tokens.get(self.pos) {
            Some(Token::Word(w)) => Some(w.to_ascii_lowercase()),
            _ => None,
        }
    }

    /// Consume a keyword (case-insensitive) or fail.
    fn expect_kw(&mut self, kw: &str) -> RelResult<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {}", kw.to_uppercase())))
        }
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek_word().as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> RelResult<()> {
        if self.accept_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {sym:?}")))
        }
    }

    fn accept_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.tokens.get(self.pos), Some(Token::Symbol(s)) if s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn identifier(&mut self) -> RelResult<String> {
        match self.tokens.get(self.pos) {
            Some(Token::Word(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    fn statement(&mut self) -> RelResult<Statement> {
        match self.peek_word().as_deref() {
            Some("create") => self.create(),
            Some("drop") => self.drop_index(),
            Some("insert") => self.insert(),
            Some("select") => self.select(),
            Some("update") => self.update(),
            Some("delete") => self.delete(),
            _ => Err(self.error("expected CREATE/DROP/INSERT/SELECT/UPDATE/DELETE")),
        }
    }

    fn create(&mut self) -> RelResult<Statement> {
        self.expect_kw("create")?;
        if self.accept_kw("table") {
            let table = self.identifier()?;
            self.expect_symbol("(")?;
            let mut columns = Vec::new();
            let mut pk = None;
            loop {
                if self.accept_kw("primary") {
                    self.expect_kw("key")?;
                    self.expect_symbol("(")?;
                    pk = Some(self.identifier()?);
                    self.expect_symbol(")")?;
                } else {
                    let name = self.identifier()?;
                    let ty = self.column_type()?;
                    columns.push((name, ty));
                }
                if !self.accept_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            let pk = pk.ok_or_else(|| self.error("CREATE TABLE requires PRIMARY KEY (col)"))?;
            Ok(Statement::CreateTable { table, columns, pk })
        } else if self.accept_kw("index") {
            let index = self.identifier()?;
            self.expect_kw("on")?;
            let table = self.identifier()?;
            let inverted = if self.accept_kw("using") {
                let method = self.identifier()?.to_ascii_lowercase();
                if method != "gin" && method != "btree" {
                    return Err(self.error("index method must be GIN or BTREE"));
                }
                method == "gin"
            } else {
                false
            };
            self.expect_symbol("(")?;
            let column = self.identifier()?;
            self.expect_symbol(")")?;
            Ok(Statement::CreateIndex {
                table,
                index,
                column,
                inverted,
            })
        } else {
            Err(self.error("expected TABLE or INDEX after CREATE"))
        }
    }

    fn column_type(&mut self) -> RelResult<ColumnType> {
        let word = self.identifier()?.to_ascii_lowercase();
        let base = match word.as_str() {
            "text" => ColumnType::Text,
            "int" | "bigint" | "integer" => ColumnType::Int,
            "float" | "double" | "real" => ColumnType::Float,
            "bool" | "boolean" => ColumnType::Bool,
            "timestamp" => ColumnType::Timestamp,
            other => return Err(self.error(&format!("unknown type {other}"))),
        };
        // `TEXT[]` array suffix.
        if self.accept_symbol("[") {
            self.expect_symbol("]")?;
            if base != ColumnType::Text {
                return Err(self.error("only TEXT[] arrays are supported"));
            }
            return Ok(ColumnType::TextArray);
        }
        Ok(base)
    }

    fn drop_index(&mut self) -> RelResult<Statement> {
        self.expect_kw("drop")?;
        self.expect_kw("index")?;
        let index = self.identifier()?;
        self.expect_kw("on")?;
        let table = self.identifier()?;
        Ok(Statement::DropIndex { table, index })
    }

    fn insert(&mut self) -> RelResult<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.identifier()?;
        self.expect_kw("values")?;
        self.expect_symbol("(")?;
        let mut row = Vec::new();
        loop {
            row.push(self.literal()?);
            if !self.accept_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(Statement::Insert { table, row })
    }

    fn select(&mut self) -> RelResult<Statement> {
        self.expect_kw("select")?;
        let count = if self.accept_kw("count") {
            self.expect_symbol("(")?;
            self.expect_symbol("*")?;
            self.expect_symbol(")")?;
            true
        } else {
            self.expect_symbol("*")?;
            false
        };
        self.expect_kw("from")?;
        let table = self.identifier()?;
        let pred = if self.accept_kw("where") {
            self.predicate()?
        } else {
            Predicate::True
        };
        // ORDER BY col LIMIT n — only as a range scan over a >= bound.
        if self.accept_kw("order") {
            self.expect_kw("by")?;
            let column = self.identifier()?;
            self.expect_kw("limit")?;
            let limit = self.number()? as usize;
            if count {
                return Err(self.error("count(*) cannot take ORDER BY ... LIMIT"));
            }
            let start =
                match pred {
                    Predicate::Ge(ref col, ref v) if *col == column => v.clone(),
                    Predicate::True => range_floor(),
                    _ => return Err(self.error(
                        "ORDER BY ... LIMIT requires WHERE <order-col> >= <value> (or no WHERE)",
                    )),
                };
            return Ok(Statement::SelectRange {
                table,
                column,
                start,
                limit,
            });
        }
        Ok(if count {
            Statement::Count { table, pred }
        } else {
            Statement::Select { table, pred }
        })
    }

    fn update(&mut self) -> RelResult<Statement> {
        self.expect_kw("update")?;
        let table = self.identifier()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_symbol("=")?;
            assignments.push((col, self.literal()?));
            if !self.accept_symbol(",") {
                break;
            }
        }
        let pred = if self.accept_kw("where") {
            self.predicate()?
        } else {
            Predicate::True
        };
        Ok(Statement::Update {
            table,
            pred,
            assignments,
        })
    }

    fn delete(&mut self) -> RelResult<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.identifier()?;
        let pred = if self.accept_kw("where") {
            self.predicate()?
        } else {
            Predicate::True
        };
        Ok(Statement::Delete { table, pred })
    }

    // ------------------------------------------------------- predicates

    fn predicate(&mut self) -> RelResult<Predicate> {
        let mut terms = vec![self.and_term()?];
        while self.accept_kw("or") {
            terms.push(self.and_term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Predicate::Or(terms)
        })
    }

    fn and_term(&mut self) -> RelResult<Predicate> {
        let mut terms = vec![self.unary()?];
        while self.accept_kw("and") {
            terms.push(self.unary()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Predicate::And(terms)
        })
    }

    fn unary(&mut self) -> RelResult<Predicate> {
        if self.accept_kw("not") {
            return Ok(Predicate::Not(Box::new(self.unary()?)));
        }
        if self.accept_symbol("(") {
            let inner = self.predicate()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        // `'value' = ANY(col)` — membership in an array column.
        if let Some(Token::Str(value)) = self.tokens.get(self.pos).cloned() {
            self.pos += 1;
            self.expect_symbol("=")?;
            self.expect_kw("any")?;
            self.expect_symbol("(")?;
            let col = self.identifier()?;
            self.expect_symbol(")")?;
            return Ok(Predicate::Contains(col, value));
        }
        // `col <op> literal` or `col IS NULL`.
        let col = self.identifier()?;
        if self.accept_kw("is") {
            self.expect_kw("null")?;
            return Ok(Predicate::IsNull(col));
        }
        for (sym, build) in [
            ("<=", Predicate::Le as fn(String, Datum) -> Predicate),
            (">=", Predicate::Ge),
            ("<", Predicate::Lt),
            (">", Predicate::Gt),
            ("=", Predicate::Eq),
        ] {
            if self.accept_symbol(sym) {
                return Ok(build(col, self.literal()?));
            }
        }
        Err(self.error("expected comparison operator"))
    }

    // --------------------------------------------------------- literals

    fn number(&mut self) -> RelResult<i64> {
        match self.tokens.get(self.pos) {
            Some(Token::Number(n)) if !n.contains('.') => {
                let v = n.parse().map_err(|_| self.error("bad integer"))?;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.error("expected integer")),
        }
    }

    fn literal(&mut self) -> RelResult<Datum> {
        match self.tokens.get(self.pos).cloned() {
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Datum::Text(s))
            }
            Some(Token::Number(n)) => {
                self.pos += 1;
                if n.contains('.') {
                    Ok(Datum::Float(
                        n.parse().map_err(|_| self.error("bad float"))?,
                    ))
                } else {
                    Ok(Datum::Int(
                        n.parse().map_err(|_| self.error("bad integer"))?,
                    ))
                }
            }
            Some(Token::Word(w)) => match w.to_ascii_lowercase().as_str() {
                "null" => {
                    self.pos += 1;
                    Ok(Datum::Null)
                }
                "true" => {
                    self.pos += 1;
                    Ok(Datum::Bool(true))
                }
                "false" => {
                    self.pos += 1;
                    Ok(Datum::Bool(false))
                }
                "timestamp" => {
                    self.pos += 1;
                    let ms = self.number()?;
                    if ms < 0 {
                        return Err(self.error("timestamps are non-negative"));
                    }
                    Ok(Datum::Timestamp(ms as u64))
                }
                "array" => {
                    self.pos += 1;
                    self.expect_symbol("[")?;
                    let mut items = Vec::new();
                    if !self.accept_symbol("]") {
                        loop {
                            match self.tokens.get(self.pos).cloned() {
                                Some(Token::Str(s)) => {
                                    items.push(s);
                                    self.pos += 1;
                                }
                                _ => return Err(self.error("ARRAY elements must be strings")),
                            }
                            if !self.accept_symbol(",") {
                                break;
                            }
                        }
                        self.expect_symbol("]")?;
                    }
                    Ok(Datum::TextArray(items))
                }
                other => Err(self.error(&format!("unexpected word {other:?} in literal"))),
            },
            _ => Err(self.error("expected literal")),
        }
    }
}

/// The smallest text datum, used for `ORDER BY col LIMIT n` with no bound.
fn range_floor() -> Datum {
    Datum::Text(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let stmt = parse(
            "CREATE TABLE personal_data (key TEXT, n INT, tags TEXT[], at TIMESTAMP, \
             PRIMARY KEY (key));",
        )
        .unwrap();
        assert_eq!(
            stmt,
            Statement::CreateTable {
                table: "personal_data".into(),
                columns: vec![
                    ("key".into(), ColumnType::Text),
                    ("n".into(), ColumnType::Int),
                    ("tags".into(), ColumnType::TextArray),
                    ("at".into(), ColumnType::Timestamp),
                ],
                pk: "key".into(),
            }
        );
    }

    #[test]
    fn create_index_variants() {
        assert_eq!(
            parse("CREATE INDEX tags_idx ON t USING GIN (tags)").unwrap(),
            Statement::CreateIndex {
                table: "t".into(),
                index: "tags_idx".into(),
                column: "tags".into(),
                inverted: true,
            }
        );
        assert_eq!(
            parse("create index n_idx on t (n)").unwrap(),
            Statement::CreateIndex {
                table: "t".into(),
                index: "n_idx".into(),
                column: "n".into(),
                inverted: false,
            }
        );
        assert_eq!(
            parse("DROP INDEX n_idx ON t").unwrap(),
            Statement::DropIndex {
                table: "t".into(),
                index: "n_idx".into()
            }
        );
    }

    #[test]
    fn insert_with_all_literal_kinds() {
        let stmt = parse(
            "INSERT INTO t VALUES ('it''s', -3, 2.5, TRUE, NULL, ARRAY['a','b'], TIMESTAMP 99)",
        )
        .unwrap();
        assert_eq!(
            stmt,
            Statement::Insert {
                table: "t".into(),
                row: vec![
                    Datum::Text("it's".into()),
                    Datum::Int(-3),
                    Datum::Float(2.5),
                    Datum::Bool(true),
                    Datum::Null,
                    Datum::TextArray(vec!["a".into(), "b".into()]),
                    Datum::Timestamp(99),
                ],
            }
        );
    }

    #[test]
    fn select_with_predicates() {
        let stmt =
            parse("SELECT * FROM t WHERE usr = 'neo' AND NOT 'ads' = ANY(obj) OR expiry IS NULL")
                .unwrap();
        assert_eq!(
            stmt,
            Statement::Select {
                table: "t".into(),
                pred: Predicate::Or(vec![
                    Predicate::And(vec![
                        Predicate::eq_text("usr", "neo"),
                        Predicate::Not(Box::new(Predicate::contains("obj", "ads"))),
                    ]),
                    Predicate::IsNull("expiry".into()),
                ]),
            }
        );
    }

    #[test]
    fn parenthesized_precedence() {
        let stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        let Statement::Select { pred, .. } = stmt else {
            panic!()
        };
        assert_eq!(
            pred,
            Predicate::And(vec![
                Predicate::Or(vec![
                    Predicate::Eq("a".into(), Datum::Int(1)),
                    Predicate::Eq("b".into(), Datum::Int(2)),
                ]),
                Predicate::Eq("c".into(), Datum::Int(3)),
            ])
        );
    }

    #[test]
    fn count_and_comparisons() {
        let stmt = parse("SELECT count(*) FROM t WHERE at <= TIMESTAMP 5 AND n > 2").unwrap();
        assert_eq!(
            stmt,
            Statement::Count {
                table: "t".into(),
                pred: Predicate::And(vec![
                    Predicate::Le("at".into(), Datum::Timestamp(5)),
                    Predicate::Gt("n".into(), Datum::Int(2)),
                ]),
            }
        );
    }

    #[test]
    fn order_by_limit_becomes_range_scan() {
        let stmt = parse("SELECT * FROM t WHERE key >= 'k5' ORDER BY key LIMIT 10").unwrap();
        assert_eq!(
            stmt,
            Statement::SelectRange {
                table: "t".into(),
                column: "key".into(),
                start: Datum::Text("k5".into()),
                limit: 10,
            }
        );
        // No WHERE: scan from the beginning.
        let stmt = parse("SELECT * FROM t ORDER BY key LIMIT 3").unwrap();
        assert!(matches!(stmt, Statement::SelectRange { limit: 3, .. }));
    }

    #[test]
    fn update_and_delete() {
        assert_eq!(
            parse("UPDATE t SET data = 'x', n = 1 WHERE key = 'k'").unwrap(),
            Statement::Update {
                table: "t".into(),
                pred: Predicate::eq_text("key", "k"),
                assignments: vec![
                    ("data".into(), Datum::Text("x".into())),
                    ("n".into(), Datum::Int(1)),
                ],
            }
        );
        assert_eq!(
            parse("DELETE FROM t").unwrap(),
            Statement::Delete {
                table: "t".into(),
                pred: Predicate::True
            }
        );
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in [
            "",
            "SELEC * FROM t",
            "SELECT * FROM",
            "CREATE TABLE t (a TEXT)", // no primary key
            "INSERT INTO t VALUES ()",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t WHERE a ==",
            "SELECT * FROM t WHERE a = 'x' trailing",
            "INSERT INTO t VALUES ('unterminated)",
            "CREATE TABLE t (a INT[], PRIMARY KEY (a))", // only TEXT[] arrays
            "SELECT * FROM t WHERE a = 1 ORDER BY b LIMIT 2", // wrong order col
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn end_to_end_sql_session() {
        let db = crate::Database::open(crate::RelConfig::default()).unwrap();
        db.execute_sql(
            "CREATE TABLE people (key TEXT, usr TEXT, tags TEXT[], at TIMESTAMP, \
             PRIMARY KEY (key))",
        )
        .unwrap();
        db.execute_sql("CREATE INDEX tags_idx ON people USING GIN (tags)")
            .unwrap();
        for i in 0..10 {
            db.execute_sql(&format!(
                "INSERT INTO people VALUES ('k{i}', 'u{}', ARRAY['ads'], TIMESTAMP {})",
                i % 3,
                i * 100
            ))
            .unwrap();
        }
        let rows = db
            .execute_sql("SELECT * FROM people WHERE usr = 'u1' AND 'ads' = ANY(tags)")
            .unwrap();
        assert_eq!(rows.rows().len(), 3);
        let n = db
            .execute_sql("SELECT count(*) FROM people WHERE at <= TIMESTAMP 400")
            .unwrap();
        assert_eq!(n.rows_affected(), 5);
        db.execute_sql("UPDATE people SET usr = 'renamed' WHERE usr = 'u1'")
            .unwrap();
        assert_eq!(
            db.execute_sql("SELECT count(*) FROM people WHERE usr = 'renamed'")
                .unwrap()
                .rows_affected(),
            3
        );
        let page = db
            .execute_sql("SELECT * FROM people WHERE key >= 'k3' ORDER BY key LIMIT 4")
            .unwrap();
        assert_eq!(page.rows().len(), 4);
        db.execute_sql("DELETE FROM people WHERE at >= TIMESTAMP 500")
            .unwrap();
        assert_eq!(
            db.execute_sql("SELECT count(*) FROM people")
                .unwrap()
                .rows_affected(),
            5
        );
    }
}
