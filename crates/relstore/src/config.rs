//! Engine configuration: the knobs the paper turns in §5.2 / Figure 4b.

use std::path::PathBuf;
use std::time::Duration;

/// WAL flush policy (PostgreSQL's `synchronous_commit`/`wal_sync_method`
/// family, reduced to the three behaviours that matter here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync every record.
    Always,
    /// fsync at most once per second.
    #[default]
    EverySec,
    /// Let the OS flush when it pleases.
    Never,
}

/// Where the write-ahead log lives.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum WalStorage {
    /// No WAL (benchmark baseline).
    #[default]
    Disabled,
    /// A real file.
    File(PathBuf),
    /// In-memory buffer, for tests and recovery checks.
    Memory,
}

/// Full engine configuration.
///
/// Defaults are the Figure 4b baseline: no security features. The paper's
/// GDPR retrofit corresponds to:
///
/// | paper feature | knob |
/// |---------------|------|
/// | Encrypt (LUKS + SSL) | [`encrypt_at_rest`](Self::encrypt_at_rest) + [`encrypt_transit`](Self::encrypt_transit) |
/// | TTL (expiry column + 1 s daemon) | [`ttl_sweep_interval`](Self::ttl_sweep_interval) + [`crate::ttl::TtlDaemon`] |
/// | Log (csvlog + row-level response logging) | [`log_statements`](Self::log_statements) + [`log_reads`](Self::log_reads) |
#[derive(Debug, Clone)]
pub struct RelConfig {
    pub wal: WalStorage,
    pub fsync: FsyncPolicy,
    /// Seal WAL records with the at-rest cipher.
    pub encrypt_at_rest: bool,
    /// Round-trip statements/results through an encrypted session.
    pub encrypt_transit: bool,
    /// Record mutating statements in the query log (csvlog).
    pub log_statements: bool,
    /// Record read statements (SELECT/COUNT) too — the paper's row-level
    /// security response logging.
    pub log_reads: bool,
    /// Interval of the TTL sweep daemon (the paper sets 1 second).
    pub ttl_sweep_interval: Duration,
    /// Key material for the ciphers.
    pub cipher_seed: Vec<u8>,
}

impl Default for RelConfig {
    fn default() -> Self {
        RelConfig {
            wal: WalStorage::Disabled,
            fsync: FsyncPolicy::EverySec,
            encrypt_at_rest: false,
            encrypt_transit: false,
            log_statements: false,
            log_reads: false,
            ttl_sweep_interval: Duration::from_secs(1),
            cipher_seed: b"gdprbench-default-key".to_vec(),
        }
    }
}

impl RelConfig {
    /// The paper's fully GDPR-compliant PostgreSQL: WAL + encryption at rest
    /// and in transit, full statement logging including reads.
    pub fn gdpr_compliant(wal_path: impl Into<PathBuf>) -> Self {
        RelConfig {
            wal: WalStorage::File(wal_path.into()),
            encrypt_at_rest: true,
            encrypt_transit: true,
            log_statements: true,
            log_reads: true,
            ..Default::default()
        }
    }

    /// In-memory variant of [`Self::gdpr_compliant`] for tests.
    pub fn gdpr_compliant_in_memory() -> Self {
        RelConfig {
            wal: WalStorage::Memory,
            encrypt_at_rest: true,
            encrypt_transit: true,
            log_statements: true,
            log_reads: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_baseline() {
        let c = RelConfig::default();
        assert_eq!(c.wal, WalStorage::Disabled);
        assert!(!c.encrypt_at_rest && !c.encrypt_transit);
        assert!(!c.log_statements && !c.log_reads);
        assert_eq!(c.ttl_sweep_interval, Duration::from_secs(1));
    }

    #[test]
    fn compliant_enables_everything() {
        let c = RelConfig::gdpr_compliant_in_memory();
        assert_eq!(c.wal, WalStorage::Memory);
        assert!(c.encrypt_at_rest && c.encrypt_transit && c.log_statements && c.log_reads);
    }
}
