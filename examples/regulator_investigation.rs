//! A regulator's investigation (the paper's Regulator workload, §4.2.2),
//! modelled on the EDPB's first-year statistics: a customer complaint, a
//! metadata audit, a deletion check, and a system-log pull — against a
//! store that has real activity on it.
//!
//! ```sh
//! cargo run --example regulator_investigation
//! ```

use gdprbench_repro::connectors::PostgresConnector;
use gdprbench_repro::gdpr_core::{
    GdprConnector, GdprQuery, GdprResponse, MetadataField, MetadataUpdate, Session,
};
use gdprbench_repro::workload::datagen::{record_of, CorpusConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A metadata-indexed compliant store with a realistic corpus on it.
    let db = gdprbench_repro::relstore::Database::open(
        gdprbench_repro::relstore::RelConfig::gdpr_compliant_in_memory(),
    )?;
    let store = PostgresConnector::with_metadata_indices(db)?;
    let corpus = CorpusConfig {
        records: 500,
        users: 40,
        ..Default::default()
    };
    let controller = Session::controller();
    for i in 0..corpus.records {
        store.execute(&controller, &GdprQuery::CreateRecord(record_of(i, &corpus)))?;
    }

    // Generate some activity worth investigating: a processor reads under a
    // purpose, the controller shares a user's records with a third party.
    let complainant = record_of(7, &corpus).metadata.user;
    let processor = Session::processor("ads");
    store.execute(&processor, &GdprQuery::ReadDataByPurpose("ads".into()))?;
    store.execute(
        &controller,
        &GdprQuery::UpdateMetadataByUser {
            user: complainant.clone(),
            update: MetadataUpdate::Add(MetadataField::Sharing, "x-corp".into()),
        },
    )?;

    let regulator = Session::regulator();
    println!("--- investigating complaint by {complainant} ---\n");

    // 1. What does the controller hold on the complainant, and under what
    //    terms? (read-metadata-by-usr: 46% of the regulator workload)
    let response = store.execute(
        &regulator,
        &GdprQuery::ReadMetadataByUser(complainant.clone()),
    )?;
    if let GdprResponse::Metadata(items) = &response {
        println!("records concerning {complainant}: {}", items.len());
        for (key, m) in items.iter().take(3) {
            println!(
                "  {key}: purposes={:?} ttl={:?} shared-with={:?} source={}",
                m.purposes, m.ttl, m.sharing, m.source
            );
        }
        if items.len() > 3 {
            println!("  ... and {} more", items.len() - 3);
        }
    }

    // 2. Which of the complainant's records were shared with x-corp?
    //    (third-party sharing investigation, G13.1)
    let response = store.execute(
        &regulator,
        &GdprQuery::ReadMetadataBySharedWith("x-corp".into()),
    )?;
    println!("\nrecords shared with x-corp: {}", response.cardinality());

    // 3. Did a previously requested erasure actually happen? (verify-deletion:
    //    23% of the regulator workload)
    let customer = Session::customer(complainant.clone());
    let key = record_of(7, &corpus).key;
    store.execute(&customer, &GdprQuery::DeleteByKey(key.clone()))?;
    let verdict = store.execute(&regulator, &GdprQuery::VerifyDeletion(key.clone()))?;
    println!("\nverify-deletion of {key}: {verdict:?}");

    // 4. Pull the system logs for the investigation window (get-system-logs:
    //    31% of the regulator workload). Regulators see metadata and logs,
    //    never personal data.
    let logs = store.execute(
        &regulator,
        &GdprQuery::GetSystemLogs {
            from_ms: 0,
            to_ms: u64::MAX,
        },
    )?;
    println!("\nsystem log entries in window: {}", logs.cardinality());
    if let GdprResponse::Logs(lines) = &logs {
        for line in lines.iter().rev().take(5) {
            println!("  {} {} {}", line.actor, line.operation, line.detail);
        }
    }
    let data_attempt = store.execute(&regulator, &GdprQuery::ReadDataByUser(complainant));
    println!("\nregulator tries to read raw personal data -> {data_attempt:?}");
    Ok(())
}
