//! Breach notification under GDPR Articles 33/34: within 72 hours of
//! discovery, a controller must report the approximate number of data
//! subjects and records affected. The paper identifies this as the reason
//! compliant stores audit every access — which is why this report can be
//! computed from the audit trail alone.
//!
//! Scenario: a processor credential is compromised between two points in
//! time; the controller replays the audit window to identify what the
//! attacker could have touched.
//!
//! ```sh
//! cargo run --example breach_notification
//! ```

use gdprbench_repro::clock::Clock;
use gdprbench_repro::connectors::RedisConnector;
use gdprbench_repro::gdpr_core::{GdprConnector, GdprQuery, Session};
use gdprbench_repro::workload::datagen::{record_of, CorpusConfig};
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = gdprbench_repro::clock::sim();
    let store = gdprbench_repro::kvstore::KvStore::open_with_clock(
        gdprbench_repro::kvstore::KvConfig::default(),
        sim.clone(),
    )?;
    let conn = RedisConnector::new(store);

    let corpus = CorpusConfig {
        records: 200,
        users: 25,
        ..Default::default()
    };
    let controller = Session::controller();
    for i in 0..corpus.records {
        conn.execute(&controller, &GdprQuery::CreateRecord(record_of(i, &corpus)))?;
    }

    // Normal traffic before the breach.
    sim.advance(std::time::Duration::from_secs(60));
    let legit = Session::processor("billing");
    conn.execute(&legit, &GdprQuery::ReadDataByPurpose("billing".into()))?;

    // ---- the breach window opens ----
    sim.advance(std::time::Duration::from_secs(60));
    let window_start = sim.now().as_millis();
    let attacker = Session::processor("ads"); // stolen processor credential
    let mut touched_keys: HashSet<String> = HashSet::new();
    for query in [
        GdprQuery::ReadDataByPurpose("ads".into()),
        GdprQuery::ReadDataNotObjecting("ads".into()),
    ] {
        if let Ok(resp) = conn.execute(&attacker, &query) {
            if let Some(data) = resp.as_data() {
                touched_keys.extend(data.iter().map(|(k, _)| k.clone()));
            }
        }
    }
    // The attacker also probes records it has no purpose for — denied, but
    // the denials are audited too.
    let _ = conn.execute(
        &attacker,
        &GdprQuery::ReadMetadataByUser("user000001".into()),
    );
    sim.advance(std::time::Duration::from_secs(60));
    let window_end = sim.now().as_millis();
    // ---- the breach window closes ----

    // The controller reconstructs the blast radius from the audit trail
    // (G33.3a: "approximate number of customers and personal data records
    // affected").
    let logs = conn.execute(
        &controller,
        &GdprQuery::GetSystemLogs {
            from_ms: window_start,
            to_ms: window_end,
        },
    )?;
    let lines = match &logs {
        gdprbench_repro::gdpr_core::GdprResponse::Logs(lines) => lines.clone(),
        _ => unreachable!(),
    };
    println!("audit entries in breach window: {}", lines.len());
    for line in &lines {
        println!("  {} {} {}", line.actor, line.operation, line.detail);
    }

    // Affected subjects: owners of every record the compromised session
    // could read. (We recompute ownership from the corpus; a production
    // controller would join the audit trail against the record store.)
    let affected_users: HashSet<String> = (0..corpus.records)
        .map(|i| record_of(i, &corpus))
        .filter(|r| touched_keys.contains(&r.key))
        .map(|r| r.metadata.user)
        .collect();
    println!("\n=== Article 33 notification draft ===");
    println!("breach window   : {window_start}ms - {window_end}ms");
    println!("records affected: {}", touched_keys.len());
    println!("subjects affected: {}", affected_users.len());
    println!("(report due within 72 hours of discovery)");
    Ok(())
}
