//! A controller's erasure workflow over the network: start a `gdpr-server`
//! on a loopback port, drive the whole flow through a `GdprClient`, and
//! prove the audit trail (G30) is identical to the same workflow run
//! against an in-process engine — the wire is transparent to compliance.
//!
//! ```sh
//! cargo run --example remote_controller
//! ```

use gdprbench_repro::connectors::{GdprClient, RedisConnector};
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{EngineHandle, GdprConnector, GdprQuery, GdprResponse, Session};
use gdprbench_repro::gdpr_server::{GdprServer, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

/// The workflow under comparison: the controller collects records for two
/// subjects, one subject exercises Article 17, the controller completes a
/// purpose (G5.1b group deletion), and the regulator verifies.
fn erasure_workflow(
    execute: &dyn Fn(
        &Session,
        &GdprQuery,
    ) -> Result<GdprResponse, gdprbench_repro::gdpr_core::GdprError>,
) -> Result<Vec<gdprbench_repro::gdpr_core::response::LogLine>, Box<dyn std::error::Error>> {
    let controller = Session::controller();
    for (key, user, purposes) in [
        ("rec-1", "trinity", vec!["billing", "ads"]),
        ("rec-2", "trinity", vec!["ads"]),
        ("rec-3", "morpheus", vec!["billing"]),
    ] {
        execute(
            &controller,
            &GdprQuery::CreateRecord(PersonalRecord::new(
                key,
                format!("data-of-{user}"),
                Metadata::new(
                    user,
                    purposes.into_iter().map(String::from).collect(),
                    Duration::from_secs(3600),
                ),
            )),
        )?;
    }

    // Article 17: trinity erases everything about her.
    let trinity = Session::customer("trinity");
    let deleted = execute(&trinity, &GdprQuery::DeleteByUser("trinity".into()))?;
    assert_eq!(deleted, GdprResponse::Deleted(2));

    // Purpose completion: billing is done; its group goes too (G5.1b).
    let deleted = execute(&controller, &GdprQuery::DeleteByPurpose("billing".into()))?;
    assert_eq!(deleted, GdprResponse::Deleted(1));

    // The regulator verifies erasure and pulls the audit trail.
    let regulator = Session::regulator();
    for key in ["rec-1", "rec-2", "rec-3"] {
        assert_eq!(
            execute(&regulator, &GdprQuery::VerifyDeletion(key.into()))?,
            GdprResponse::DeletionVerified(true),
            "{key} must be gone"
        );
    }
    match execute(
        &regulator,
        &GdprQuery::GetSystemLogs {
            from_ms: 0,
            to_ms: u64::MAX,
        },
    )? {
        GdprResponse::Logs(lines) => Ok(lines),
        other => Err(format!("expected logs, got {other:?}").into()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Both engines run on one simulated clock so audit timestamps are
    // comparable: what's under test is the transport, not the wall clock.
    let sim = gdprbench_repro::clock::sim();
    let open = || {
        gdprbench_repro::kvstore::KvStore::open_with_clock(
            gdprbench_repro::kvstore::KvConfig::default(),
            sim.clone(),
        )
        .map(|store| RedisConnector::with_metadata_index(store).unwrap())
    };

    // ---------- the networked run ----------
    let served: EngineHandle = Arc::new(open()?);
    let server = GdprServer::bind(served, "127.0.0.1:0", ServerConfig::default())?;
    println!("[server] gdpr-server listening on {}", server.local_addr());
    let client = GdprClient::connect(&server.local_addr().to_string())?;
    println!(
        "[client] connected; server names the engine {:?}",
        client.server_name()?
    );
    let remote_logs = erasure_workflow(&|session, query| client.execute(session, query))?;
    println!(
        "[client] erasure workflow done over TCP: {} audit events, {} records left",
        remote_logs.len(),
        client.record_count()?
    );
    let stats = client.conn_stats()?;
    println!(
        "[client] connection stats: {} requests, {} GDPR errors, {}B in, {}B out",
        stats.requests, stats.errors, stats.bytes_in, stats.bytes_out
    );

    // ---------- the in-process control run ----------
    let local = open()?;
    let local_logs = erasure_workflow(&|session, query| local.execute(session, query))?;

    // The wire must leave no trace in the compliance record: same events,
    // same order, same outcomes, same cardinalities.
    assert_eq!(
        remote_logs, local_logs,
        "the audit trail over TCP must match the in-process run"
    );
    println!(
        "[verify] audit trails match line-for-line ({} events) — the network layer is \
         compliance-transparent",
        local_logs.len()
    );

    server.shutdown();
    println!("[server] graceful shutdown complete");
    Ok(())
}
