//! The right to be forgotten (GDPR Article 17), end to end, on both stores —
//! including the part the paper stresses: *timeliness*.
//!
//! A customer's records must actually disappear, promptly, and a regulator
//! must be able to confirm it. On Redis-shaped stores this involves the
//! expiration machinery (Figure 3a's subject); on PostgreSQL-shaped ones,
//! the TTL sweep daemon. This example runs the flow against a simulated
//! clock so TTL expiry is also demonstrated without waiting.
//!
//! ```sh
//! cargo run --example right_to_be_forgotten
//! ```

use gdprbench_repro::connectors::{PostgresConnector, RedisConnector};
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{GdprConnector, GdprQuery, GdprResponse, Session};
use std::sync::Arc;
use std::time::Duration;

fn seed(conn: &dyn GdprConnector) -> Result<(), Box<dyn std::error::Error>> {
    let controller = Session::controller();
    for (key, user, ttl_secs) in [
        ("ph-001", "trinity", 3600u64),
        ("ph-002", "trinity", 60), // expires soon
        ("ph-003", "morpheus", 3600),
    ] {
        let record = PersonalRecord::new(
            key,
            format!("data-of-{user}"),
            Metadata::new(user, vec!["billing".into()], Duration::from_secs(ttl_secs)),
        );
        conn.execute(&controller, &GdprQuery::CreateRecord(record))?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = gdprbench_repro::clock::sim();

    // ---------- Redis-shaped store ----------
    let store = gdprbench_repro::kvstore::KvStore::open_with_clock(
        gdprbench_repro::kvstore::KvConfig {
            expiration: gdprbench_repro::kvstore::ExpirationMode::Strict,
            ..Default::default()
        },
        sim.clone(),
    )?;
    let redis = RedisConnector::new(store);
    seed(&redis)?;
    println!("[redis] loaded {} records", redis.record_count());

    // Explicit erasure request by the data subject.
    let trinity = Session::customer("trinity");
    let deleted = redis.execute(&trinity, &GdprQuery::DeleteByKey("ph-001".into()))?;
    println!(
        "[redis] trinity erased ph-001 -> {deleted:?} (synchronous, per strict interpretation)"
    );

    // TTL-driven erasure: advance past ph-002's 60s TTL; one strict
    // expiration cycle reaps it.
    sim.advance(Duration::from_secs(61));
    let reaped = redis.store().run_expiration_cycle().reaped;
    println!("[redis] after 61s, strict expiration cycle reaped {reaped} record(s)");

    // The regulator confirms both are gone and morpheus' record is not.
    let regulator = Session::regulator();
    for key in ["ph-001", "ph-002", "ph-003"] {
        let verdict = redis.execute(&regulator, &GdprQuery::VerifyDeletion(key.into()))?;
        println!("[redis] verify-deletion {key}: {verdict:?}");
    }

    // ---------- PostgreSQL-shaped store ----------
    let sim = gdprbench_repro::clock::sim();
    let db = gdprbench_repro::relstore::Database::open_with_clock(
        gdprbench_repro::relstore::RelConfig::default(),
        sim.clone(),
    )?;
    let pg = Arc::new(PostgresConnector::new(db)?);
    seed(pg.as_ref())?;
    println!("[postgres] loaded {} records", pg.record_count());

    let deleted = pg.execute(&trinity, &GdprQuery::DeleteByUser("trinity".into()))?;
    if let GdprResponse::Deleted(n) = deleted {
        println!("[postgres] trinity erased all her records -> {n} deleted");
    }

    // The 1-second sweep daemon handles TTL expiry; we drive one sweep
    // against the simulated clock.
    sim.advance(Duration::from_secs(3601));
    let swept = pg.ttl_daemon().sweep_once()?;
    println!("[postgres] TTL sweep after expiry reaped {swept} record(s)");
    println!("[postgres] record count now {}", pg.record_count());
    Ok(())
}
