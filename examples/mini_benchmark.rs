//! Run a miniature GDPRbench: all four workloads, single-threaded with the
//! correctness oracle enabled, against both stores — the §4.2.3 metrics
//! (correctness, completion time, space overhead) on one screen.
//!
//! ```sh
//! cargo run --release --example mini_benchmark
//! ```

use gdprbench_repro::gdpr_core::GdprConnector;
use gdprbench_repro::workload::gdpr::{load_corpus, stable_corpus, GdprWorkloadKind};
use gdprbench_repro::workload::run_gdpr_workload;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const RECORDS: usize = 1_000;
    const OPS: u64 = 300;

    println!(
        "GDPRbench mini-run: {RECORDS} records, {OPS} ops per workload, 1 thread, oracle on\n"
    );
    println!(
        "{:<12} {:<11} {:>12} {:>11} {:>12} {:>12}",
        "connector", "workload", "completion", "ops/s", "correctness", "space-factor"
    );

    for db in ["redis", "postgres-mi"] {
        for kind in GdprWorkloadKind::ALL {
            // Fresh store per run so the oracle and store start identical.
            let connector: Arc<dyn GdprConnector> = match db {
                "redis" => Arc::new(gdprbench_repro::connectors::RedisConnector::new(
                    gdprbench_repro::kvstore::KvStore::open(
                        gdprbench_repro::kvstore::KvConfig::default(),
                    )?,
                )),
                _ => Arc::new(
                    gdprbench_repro::connectors::PostgresConnector::with_metadata_indices(
                        gdprbench_repro::relstore::Database::open(
                            gdprbench_repro::relstore::RelConfig::default(),
                        )?,
                    )?,
                ),
            };
            let corpus = stable_corpus(RECORDS);
            load_corpus(connector.as_ref(), &corpus)?;
            let report = run_gdpr_workload(connector, kind, corpus, OPS, 1, true);
            println!(
                "{:<12} {:<11} {:>12} {:>11.1} {:>11.1}% {:>11.2}x",
                report.connector,
                report.workload,
                format!("{:?}", report.completion),
                report.throughput_ops_per_sec(),
                report.correctness.unwrap_or(0.0) * 100.0,
                report.space.overhead_factor(),
            );
        }
    }
    Ok(())
}
