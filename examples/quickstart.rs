//! Quickstart: open a GDPR-compliant store, write a personal-data record,
//! and act on it as each of the four GDPR roles.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gdprbench_repro::connectors::RedisConnector;
use gdprbench_repro::gdpr_core::record::{Metadata, PersonalRecord};
use gdprbench_repro::gdpr_core::{GdprConnector, GdprQuery, Session};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fully compliant in-memory store: strict timely deletion, audit
    // logging of every operation (reads included), encryption at rest and
    // in transit.
    let store = RedisConnector::open_compliant()?;

    // --- Controller: collect a record, with the seven GDPR metadata
    //     attributes the paper calls "metadata explosion". ---
    let controller = Session::controller();
    let record = PersonalRecord::new(
        "ph-1x4b",
        "123-456-7890",
        Metadata::new(
            "neo",
            vec!["ads".into(), "2fa".into()],
            Duration::from_secs(365 * 24 * 3600), // TTL=365days
        ),
    );
    store.execute(&controller, &GdprQuery::CreateRecord(record))?;
    println!("controller: created ph-1x4b for user neo (purposes: ads, 2fa)");

    // --- Processor: read the data under a declared purpose (G28). ---
    let processor = Session::processor("ads");
    let response = store.execute(&processor, &GdprQuery::ReadDataByPurpose("ads".into()))?;
    println!("processor(ads): sees {} record(s)", response.cardinality());

    // --- Customer: object to 'ads' (G21) — the processor loses access. ---
    let neo = Session::customer("neo");
    store.execute(
        &neo,
        &GdprQuery::UpdateMetadataByKey {
            key: "ph-1x4b".into(),
            update: gdprbench_repro::gdpr_core::MetadataUpdate::Add(
                gdprbench_repro::gdpr_core::MetadataField::Objections,
                "ads".into(),
            ),
        },
    )?;
    let response = store.execute(&processor, &GdprQuery::ReadDataByPurpose("ads".into()))?;
    println!(
        "processor(ads) after neo's objection: sees {} record(s)",
        response.cardinality()
    );

    // --- Customer: the right to be forgotten (G17). ---
    store.execute(&neo, &GdprQuery::DeleteByUser("neo".into()))?;
    println!("customer neo: requested erasure of all records");

    // --- Regulator: verify the deletion really happened, then pull the
    //     audit trail (G30/G33). ---
    let regulator = Session::regulator();
    let verified = store.execute(&regulator, &GdprQuery::VerifyDeletion("ph-1x4b".into()))?;
    println!("regulator: deletion verified -> {verified:?}");
    let logs = store.execute(
        &regulator,
        &GdprQuery::GetSystemLogs {
            from_ms: 0,
            to_ms: u64::MAX,
        },
    )?;
    println!(
        "regulator: audit trail holds {} entries:",
        logs.cardinality()
    );
    if let gdprbench_repro::gdpr_core::GdprResponse::Logs(lines) = &logs {
        for line in lines {
            println!(
                "  [{:>6}ms] {:<22} {:<24} {}",
                line.timestamp_ms, line.actor, line.operation, line.detail
            );
        }
    }

    // --- And the capability report the store would hand an auditor. ---
    let features = store.features();
    println!(
        "feature report: fully compliant = {} ({:?} gaps)",
        features.is_fully_compliant(),
        features.gaps()
    );
    Ok(())
}
